// Command kgcd runs the KGC enrollment service (internal/kgcd): a
// threshold (t-of-n) deployment where each signer replica holds one Shamir
// share of the master secret and a combiner aggregates any t key shares
// into partial private keys over JSON/HTTP.
//
// Three roles:
//
//	kgcd                                  all-in-one t-of-n on loopback
//	kgcd -role signer   -share s.hex ...  one share-holder replica
//	kgcd -role combiner -signers a,b,c .. the public front-end
//
// All-in-one shards a master key (fresh, or -master file) and runs the n
// replicas plus the combiner in one process — each replica on its own
// listener, so the traffic is real HTTP. -sharedir dumps the shares and
// parameters so the same deployment can later be split across machines:
//
//	kgcd -t 2 -n 3 -listen 127.0.0.1:7600 -sharedir ./shares
//	kgcd -role signer -params ./shares/params.pub -share ./shares/share-1.hex -listen :7611
//	kgcd -role combiner -params ./shares/params.pub -t 2 \
//	     -signers http://a:7611,http://b:7612,http://c:7613 -listen :7600
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"math/big"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mccls/internal/bn254"
	"mccls/internal/core"
	"mccls/internal/kgcd"
	"mccls/internal/threshold"
)

func main() {
	// SIGINT/SIGTERM start a graceful drain instead of dropping in-flight
	// enrollments on the floor; a second signal kills the process hard.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kgcd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("kgcd", flag.ContinueOnError)
	role := fs.String("role", "all", "all | signer | combiner")
	listen := fs.String("listen", "127.0.0.1:7600", "address to serve on")
	t := fs.Int("t", 2, "quorum: shares needed to issue a key")
	n := fs.Int("n", 3, "total signer replicas (all-in-one)")
	masterPath := fs.String("master", "", "hex master-key file (all-in-one; empty draws a fresh key)")
	shareDir := fs.String("sharedir", "", "directory to dump shares + params into (all-in-one)")
	sharePath := fs.String("share", "", "hex share file (signer role)")
	paramsPath := fs.String("params", "", "hex public-parameters file (signer/combiner roles)")
	signers := fs.String("signers", "", "comma-separated replica base URLs (combiner role)")
	cacheSize := fs.Int("cache", kgcd.DefaultCacheSize, "partial-key LRU capacity")
	rate := fs.Float64("rate", kgcd.DefaultRatePerSec, "per-identity enrollments/sec (negative disables)")
	burst := fs.Int("burst", kgcd.DefaultRateBurst, "per-identity burst size")
	timeout := fs.Duration("timeout", kgcd.DefaultRequestTimeout, "per-enrollment fan-out timeout")
	grace := fs.Duration("grace", 10*time.Second, "drain budget for graceful shutdown on SIGINT/SIGTERM")
	validate := fs.Bool("validate", false, "pairing-check every combined key before serving it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	combCfg := kgcd.Config{
		CacheSize:        *cacheSize,
		RatePerSec:       *rate,
		RateBurst:        *burst,
		RequestTimeout:   *timeout,
		ValidateCombined: *validate,
	}
	switch *role {
	case "all":
		return runAll(ctx, *listen, *t, *n, *masterPath, *shareDir, *grace, combCfg)
	case "signer":
		return runSigner(ctx, *listen, *sharePath, *paramsPath, *grace)
	case "combiner":
		return runCombiner(ctx, *listen, *t, *paramsPath, *signers, *grace, combCfg)
	default:
		return fmt.Errorf("unknown role %q (want all, signer or combiner)", *role)
	}
}

func readHexFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return hex.DecodeString(strings.TrimSpace(string(raw)))
}

func writeHexFile(path string, data []byte) error {
	return os.WriteFile(path, []byte(hex.EncodeToString(data)+"\n"), 0o600)
}

func runAll(ctx context.Context, listen string, t, n int, masterPath, shareDir string, grace time.Duration, combCfg kgcd.Config) error {
	var master *big.Int
	if masterPath != "" {
		raw, err := readHexFile(masterPath)
		if err != nil {
			return fmt.Errorf("read master: %w", err)
		}
		master = new(big.Int).SetBytes(raw)
	} else {
		var err error
		if master, err = bn254.RandomScalar(nil); err != nil {
			return err
		}
	}
	if shareDir != "" {
		// Dump the deployment material before serving, so the operator can
		// move replicas onto separate machines with the same shares.
		kgc, err := core.NewKGCFromMaster(master)
		if err != nil {
			return err
		}
		shares, err := threshold.Split(master, t, n, nil)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(shareDir, 0o700); err != nil {
			return err
		}
		if err := writeHexFile(filepath.Join(shareDir, "params.pub"), kgc.Params().Marshal()); err != nil {
			return err
		}
		for _, sh := range shares {
			name := fmt.Sprintf("share-%d.hex", sh.Index)
			if err := writeHexFile(filepath.Join(shareDir, name), sh.Marshal()); err != nil {
				return err
			}
		}
		fmt.Printf("kgcd: wrote params + %d shares to %s\n", n, shareDir)
	}
	cl, err := kgcd.StartCluster(kgcd.ClusterConfig{
		T: t, N: n,
		Master:     master,
		ListenAddr: listen,
		Combiner:   combCfg,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	fmt.Printf("kgcd: %d-of-%d combiner on %s\n", t, n, cl.URL)
	for i, u := range cl.SignerURLs {
		fmt.Printf("kgcd: signer %d on %s\n", i+1, u)
	}
	<-ctx.Done() // serve until signaled
	fmt.Printf("kgcd: draining (grace %v)\n", grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return cl.Shutdown(drainCtx)
}

func runSigner(ctx context.Context, listen, sharePath, paramsPath string, grace time.Duration) error {
	if sharePath == "" || paramsPath == "" {
		return fmt.Errorf("signer role needs -share and -params")
	}
	shareRaw, err := readHexFile(sharePath)
	if err != nil {
		return fmt.Errorf("read share: %w", err)
	}
	share, err := threshold.UnmarshalShare(shareRaw)
	if err != nil {
		return err
	}
	params, err := loadParams(paramsPath)
	if err != nil {
		return err
	}
	signer, err := threshold.NewSigner(params, share)
	if err != nil {
		return err
	}
	return serve(ctx, listen, kgcd.NewSignerHandler(signer, 0),
		fmt.Sprintf("signer %d", signer.Index()), grace)
}

func runCombiner(ctx context.Context, listen string, t int, paramsPath, signers string, grace time.Duration, combCfg kgcd.Config) error {
	if paramsPath == "" || signers == "" {
		return fmt.Errorf("combiner role needs -params and -signers")
	}
	params, err := loadParams(paramsPath)
	if err != nil {
		return err
	}
	combCfg.Params = params
	combCfg.T = t
	combCfg.SignerURLs = strings.Split(signers, ",")
	srv, err := kgcd.NewServer(combCfg)
	if err != nil {
		return err
	}
	return serve(ctx, listen, srv.Handler(),
		fmt.Sprintf("%d-of-%d combiner", t, len(combCfg.SignerURLs)), grace)
}

func loadParams(path string) (*core.Params, error) {
	raw, err := readHexFile(path)
	if err != nil {
		return nil, fmt.Errorf("read params: %w", err)
	}
	return core.UnmarshalParams(raw)
}

// serve binds the listener and serves with the standard kgcd server
// timeouts until the context is canceled, then drains in-flight requests
// within the grace budget.
func serve(ctx context.Context, listen string, h http.Handler, what string, grace time.Duration) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("kgcd: %s on http://%s\n", what, ln.Addr())
	srv := kgcd.NewHTTPServer(h)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Printf("kgcd: %s draining (grace %v)\n", what, grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return srv.Shutdown(drainCtx)
}
