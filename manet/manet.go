// Package manet is the public API of the MANET evaluation substrate: a
// deterministic discrete-event simulator (random-waypoint mobility, disk
// wireless medium, full AODV) with the McCLS routing-authentication
// extension and the paper's black hole and rushing attackers.
//
// Run one scenario:
//
//	res, err := manet.Scenario{
//		MaxSpeed: 10,
//		Security: manet.McCLS,
//		Attack:   manet.Blackhole,
//	}.Run()
//	fmt.Println(res.Summary)
//
// Or regenerate a whole paper figure — every sweep point and repeat runs
// concurrently on a bounded worker pool (default GOMAXPROCS workers) with
// bit-identical output at any worker count, and each point carries a 95%
// confidence interval over its repeats:
//
//	fig, err := manet.Figure5(manet.SweepConfig{})
//	fmt.Print(fig.Render())
package manet

import (
	"context"
	"io"

	"mccls/internal/experiments"
	"mccls/internal/fault"
	"mccls/internal/metrics"
	"mccls/internal/radio"
	"mccls/internal/secrouting"
)

// Core types, aliased from the implementation.
type (
	// Scenario is one simulation configuration; zero values select the
	// paper's §6 setup (20 nodes, 1500×300 m, 10 CBR flows, 2 attackers).
	Scenario = experiments.Scenario
	// Result is a run's metrics plus radio-level counters.
	Result = experiments.Result
	// Summary holds the aggregated protocol counters and computes the
	// paper's four metrics.
	Summary = metrics.Summary
	// Aggregate is the per-sweep-point statistic across repeated seeds:
	// the pooled summary plus mean/stddev/95% CI of each headline metric.
	Aggregate = metrics.Aggregate
	// Stat is one metric's mean/stddev/95% CI over repeats.
	Stat = metrics.Stat
	// SweepConfig drives a node-speed sweep for the figures. Workers,
	// TrialTimeout and Progress control the parallel trial pool; output
	// is bit-identical at any worker count.
	SweepConfig = experiments.SweepConfig
	// SweepResult is one curve's per-point summaries and aggregates.
	SweepResult = experiments.SweepResult
	// TrialUpdate is the per-trial progress record (wall time, simulator
	// events, events/sec) delivered to SweepConfig.Progress.
	TrialUpdate = experiments.TrialUpdate
	// Figure is a regenerated paper figure (labelled data series).
	Figure = experiments.Figure
	// Series is one labelled curve.
	Series = experiments.Series
	// SecurityMode selects plain AODV or McCLS-AODV.
	SecurityMode = experiments.SecurityMode
	// AttackMode selects the adversary.
	AttackMode = experiments.AttackMode
	// Table1Row is one scheme's Table 1 entry with measured timings.
	Table1Row = experiments.Table1Row

	// MobilityModel selects the movement model (random waypoint, Manhattan
	// street grid, or highway lanes).
	MobilityModel = experiments.MobilityModel
	// GridStats reports the spatial neighbor index's work for one run
	// (rebuilds, occupied cells, per-query candidate counts).
	GridStats = radio.GridStats
	// CityConfig drives the city-scale node-count sweep (figures 9–10):
	// AODV vs McCLS on a Manhattan street grid with heterogeneous radio
	// ranges as the network densifies.
	CityConfig = experiments.CityConfig
	// MediumAblationResult is the broadcast-wave events/sec comparison of
	// the naive neighbor scan against the spatial index.
	MediumAblationResult = experiments.MediumAblationResult

	// ResilienceConfig drives the churn sweep (figures 7–8): plain AODV vs
	// McCLS-AODV with online enrollment as crash/restart events grow.
	ResilienceConfig = experiments.ResilienceConfig
	// FaultSchedule is an explicit fault-injection plan for one run:
	// node crashes, link/region outages and loss windows.
	FaultSchedule = fault.Schedule
	// Crash is one node crash (and optional restart) in a FaultSchedule.
	Crash = fault.Crash
	// LinkOutage silences one link for a time window.
	LinkOutage = fault.LinkOutage
	// RegionOutage silences every link crossing a disk for a time window.
	RegionOutage = fault.RegionOutage
	// LossWindow raises the frame-loss probability for a time window.
	LossWindow = fault.LossWindow
	// ChurnConfig parameterizes a randomly drawn crash/restart schedule.
	ChurnConfig = fault.ChurnConfig
	// EnrollConfig parameterizes the online in-network KGC enrollment
	// protocol (timeout, capped exponential backoff, flood TTL).
	EnrollConfig = secrouting.EnrollConfig
	// EnrollStats counts enrollment attempts, timeouts, successes and the
	// largest backoff any node waited.
	EnrollStats = secrouting.EnrollStats
)

// Churn draws a random crash/restart schedule: cfg.Events crashes over
// cfg.Duration with restarts after an exponential-ish downtime. The result
// is a pure function of the rng stream, so one seed gives one timeline.
var Churn = fault.Churn

// Security modes.
const (
	// AODV is plain, unauthenticated AODV.
	AODV = experiments.Plain
	// McCLS is McCLS-AODV with the calibrated crypto cost model (fast;
	// identical routing behaviour to real crypto).
	McCLS = experiments.McCLSCost
	// McCLSReal is McCLS-AODV running real pairing cryptography on every
	// control packet.
	McCLSReal = experiments.McCLSReal
)

// Attack modes.
const (
	NoAttack  = experiments.NoAttack
	Blackhole = experiments.Blackhole
	Rushing   = experiments.Rushing
	// Grayhole is the insider selective-forwarding extension: attackers
	// hold valid keys, so signatures alone do not exclude them.
	Grayhole = experiments.Grayhole
)

// Mobility models.
const (
	// RandomWaypoint is the paper's model and the Scenario zero value.
	RandomWaypoint = experiments.RandomWaypointMobility
	// Manhattan constrains nodes to a grid of orthogonal streets with
	// probabilistic turns — the urban city-scale pattern.
	Manhattan = experiments.ManhattanMobility
	// Highway moves nodes along parallel wrap-around lanes, alternating
	// direction by lane.
	Highway = experiments.HighwayMobility
)

// ExplicitZero marks a numeric Scenario field as "really zero" where the
// plain zero value would select a paper default: Attackers: ExplicitZero
// means no attackers, GrayholeDropProb: ExplicitZero a gray hole that
// never drops.
const ExplicitZero = experiments.ExplicitZero

// Figure regenerators, one per paper figure, plus the DSR generality
// extension (Scenario.RunDSR runs a single DSR scenario).
var (
	Figure1   = experiments.Figure1   // Packet Delivery Ratio vs speed
	Figure2   = experiments.Figure2   // RREQ Ratio vs speed
	Figure3   = experiments.Figure3   // End-to-End Delay vs speed
	Figure4   = experiments.Figure4   // Packet Delivery Ratio under attack
	Figure5   = experiments.Figure5   // Packet Drop Ratio under attack
	FigureDSR = experiments.FigureDSR // extension: drop ratio on the DSR substrate

	// FigureResilience (fig7) and FigureResilienceOverhead (fig8) sweep
	// node churn instead of speed: delivery and control overhead for plain
	// AODV vs the full McCLS stack re-enrolling through an in-network KGC.
	FigureResilience         = experiments.FigureResilience
	FigureResilienceOverhead = experiments.FigureResilienceOverhead

	// FigureCityPDR (fig9) and FigureCityOverhead (fig10) sweep node count
	// instead of speed: delivery and control overhead at city scale, on a
	// Manhattan street grid with heterogeneous radio ranges.
	FigureCityPDR      = experiments.FigureCityPDR
	FigureCityOverhead = experiments.FigureCityOverhead

	// RunMediumAblation times identical broadcast-wave workloads through
	// the naive O(n²) medium and the spatial index at a given node count.
	RunMediumAblation = experiments.RunMediumAblation
)

// Table1 regenerates the paper's scheme-comparison table with measured
// sign/verify timings (iters iterations per scheme; rng may be nil for
// crypto/rand).
func Table1(iters int, rng io.Reader) ([]Table1Row, error) {
	return experiments.Table1(iters, rng)
}

// Table1Context is Table1 under a context, checked between the (slow)
// per-scheme benchmarks.
func Table1Context(ctx context.Context, iters int, rng io.Reader) ([]Table1Row, error) {
	return experiments.Table1Context(ctx, iters, rng)
}

// RenderTable1 formats Table 1 rows as an aligned text table.
func RenderTable1(rows []Table1Row) string { return experiments.RenderTable1(rows) }
