package manet_test

import (
	"testing"
	"time"

	"mccls/manet"
)

// TestModeStrings pins the labels the CLI and figure legends rely on.
func TestModeStrings(t *testing.T) {
	if manet.AODV.String() != "AODV" || manet.McCLS.String() != "McCLS" {
		t.Fatal("security mode labels changed")
	}
	if manet.Blackhole.String() != "black hole" || manet.Rushing.String() != "rushing" {
		t.Fatal("attack mode labels changed")
	}
}

// TestScenarioZeroValueDefaults checks that the zero-value scenario is the
// paper's setup and runs.
func TestScenarioZeroValueDefaults(t *testing.T) {
	res, err := manet.Scenario{Duration: 20 * time.Second, Seed: 3, MaxSpeed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent == 0 {
		t.Fatal("default scenario generated no traffic")
	}
}

// TestFigureGeneratorsWired makes sure every figure function is exported
// and produces its expected series count on a minimal sweep.
func TestFigureGeneratorsWired(t *testing.T) {
	cfg := manet.SweepConfig{
		Base:    manet.Scenario{Duration: 15 * time.Second},
		Speeds:  []float64{5},
		Repeats: 1,
		Seed:    2,
	}
	cases := []struct {
		gen  func(manet.SweepConfig) (manet.Figure, error)
		want int
	}{
		{manet.Figure1, 2},
		{manet.Figure2, 2},
		{manet.Figure3, 2},
		{manet.Figure4, 6},
		{manet.Figure5, 4},
	}
	for i, tc := range cases {
		fig, err := tc.gen(cfg)
		if err != nil {
			t.Fatalf("figure %d: %v", i+1, err)
		}
		if len(fig.Series) != tc.want {
			t.Fatalf("figure %d has %d series, want %d", i+1, len(fig.Series), tc.want)
		}
	}
}
