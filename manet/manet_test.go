package manet_test

import (
	"testing"
	"time"

	"mccls/manet"
)

// TestModeStrings pins the labels the CLI and figure legends rely on.
func TestModeStrings(t *testing.T) {
	if manet.AODV.String() != "AODV" || manet.McCLS.String() != "McCLS" {
		t.Fatal("security mode labels changed")
	}
	if manet.Blackhole.String() != "black hole" || manet.Rushing.String() != "rushing" {
		t.Fatal("attack mode labels changed")
	}
}

// TestScenarioZeroValueDefaults checks that the zero-value scenario is the
// paper's setup and runs.
func TestScenarioZeroValueDefaults(t *testing.T) {
	res, err := manet.Scenario{Duration: 20 * time.Second, Seed: 3, MaxSpeed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent == 0 {
		t.Fatal("default scenario generated no traffic")
	}
}

// TestParallelSweepSurface exercises the parallel-runner surface of the
// public API: worker count, per-trial progress with event observability,
// explicit-zero sentinel, and per-point confidence intervals.
func TestParallelSweepSurface(t *testing.T) {
	var trials int
	var lastAgg manet.Aggregate
	cfg := manet.SweepConfig{
		Base:     manet.Scenario{Duration: 15 * time.Second},
		Speeds:   []float64{5},
		Repeats:  2,
		Seed:     2,
		Workers:  4,
		Progress: func(u manet.TrialUpdate) { trials++ },
	}
	res, err := cfg.Sweep(manet.AODV, manet.NoAttack)
	if err != nil {
		t.Fatal(err)
	}
	if trials != 2 {
		t.Fatalf("progress saw %d trials, want 2", trials)
	}
	if len(res.Aggregates) != 1 {
		t.Fatalf("want 1 aggregate, got %d", len(res.Aggregates))
	}
	lastAgg = res.Aggregates[0]
	if lastAgg.N != 2 || lastAgg.PDR.Mean <= 0 {
		t.Fatalf("aggregate malformed: %+v", lastAgg)
	}

	// ExplicitZero is re-exported and really means zero.
	sc := manet.Scenario{
		Duration: 15 * time.Second, Seed: 3, MaxSpeed: 5,
		Attack: manet.Blackhole, Attackers: manet.ExplicitZero,
	}
	r, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.PacketDropRatio() != 0 {
		t.Fatal("ExplicitZero attackers still dropped traffic")
	}
}

// TestFigureGeneratorsWired makes sure every figure function is exported
// and produces its expected series count on a minimal sweep.
func TestFigureGeneratorsWired(t *testing.T) {
	cfg := manet.SweepConfig{
		Base:    manet.Scenario{Duration: 15 * time.Second},
		Speeds:  []float64{5},
		Repeats: 1,
		Seed:    2,
	}
	cases := []struct {
		gen  func(manet.SweepConfig) (manet.Figure, error)
		want int
	}{
		{manet.Figure1, 2},
		{manet.Figure2, 2},
		{manet.Figure3, 2},
		{manet.Figure4, 6},
		{manet.Figure5, 4},
	}
	for i, tc := range cases {
		fig, err := tc.gen(cfg)
		if err != nil {
			t.Fatalf("figure %d: %v", i+1, err)
		}
		if len(fig.Series) != tc.want {
			t.Fatalf("figure %d has %d series, want %d", i+1, len(fig.Series), tc.want)
		}
	}
}
