// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`):
//
//   - BenchmarkTable1/*     — sign/verify cost of AP, ZWXF, YHG and McCLS
//   - BenchmarkFigure1..5   — the five simulation figures; the series
//     values are attached as custom benchmark metrics
//   - BenchmarkAblation*    — the design-choice ablations from DESIGN.md §5
//
// Figure benchmarks use a reduced sweep (two speeds, one seed, 30
// simulated seconds) so `go test -bench=.` stays minutes-scale; use
// cmd/manetsim for full paper-scale sweeps.
package mccls

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mccls/internal/experiments"
	"mccls/internal/schemes"
	"mccls/manet"
)

// ---------------------------------------------------------------------------
// Table 1

func benchScheme(b *testing.B, sch schemes.Scheme, verify bool) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	sys, err := sch.Setup(rng)
	if err != nil {
		b.Fatal(err)
	}
	user, err := sys.NewUser("bench", rng)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("benchmark message")
	// Warm per-identity caches so steady state is measured.
	sig, err := user.Sign(msg, rng)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Verify("bench", user.PublicKey(), msg, sig); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if verify {
		for i := 0; i < b.N; i++ {
			if err := sys.Verify("bench", user.PublicKey(), msg, sig); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	for i := 0; i < b.N; i++ {
		if _, err := user.Sign(msg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the paper's Table 1: each sub-benchmark is
// one scheme × {sign, verify} cell.
func BenchmarkTable1(b *testing.B) {
	for _, sch := range schemes.All() {
		sch := sch
		b.Run(sch.Profile().Name+"/sign", func(b *testing.B) { benchScheme(b, sch, false) })
		b.Run(sch.Profile().Name+"/verify", func(b *testing.B) { benchScheme(b, sch, true) })
	}
}

// ---------------------------------------------------------------------------
// Figures 1–5

// benchSweep is the reduced sweep configuration for figure benchmarks.
func benchSweep() manet.SweepConfig {
	return manet.SweepConfig{
		Base:    manet.Scenario{Duration: 30 * time.Second},
		Speeds:  []float64{5, 15},
		Repeats: 1,
		Seed:    1,
	}
}

// reportFigure attaches every series point as a benchmark metric, e.g.
// "fig1_AODV@5" = PDR of the AODV series at 5 m/s.
func reportFigure(b *testing.B, fig manet.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		for i, x := range s.X {
			name := fmt.Sprintf("%s_%s@%g", fig.ID, sanitize(s.Label), x)
			b.ReportMetric(s.Y[i], name)
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

func benchFigure(b *testing.B, gen func(manet.SweepConfig) (manet.Figure, error)) {
	b.Helper()
	var fig manet.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = gen(benchSweep())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

// BenchmarkFigure1 regenerates Fig. 1 (Packet Delivery Ratio vs speed).
func BenchmarkFigure1(b *testing.B) { benchFigure(b, manet.Figure1) }

// BenchmarkFigure2 regenerates Fig. 2 (RREQ Ratio vs speed).
func BenchmarkFigure2(b *testing.B) { benchFigure(b, manet.Figure2) }

// BenchmarkFigure3 regenerates Fig. 3 (End-to-End Delay vs speed).
func BenchmarkFigure3(b *testing.B) { benchFigure(b, manet.Figure3) }

// BenchmarkFigure4 regenerates Fig. 4 (PDR under black hole and rushing).
func BenchmarkFigure4(b *testing.B) { benchFigure(b, manet.Figure4) }

// BenchmarkFigure5 regenerates Fig. 5 (Packet Drop Ratio under attack).
func BenchmarkFigure5(b *testing.B) { benchFigure(b, manet.Figure5) }

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)

// BenchmarkAblationVerifyCached quantifies the paper's "only one pairing
// because e(P_pub, Q_ID) is constant" claim: verification with a warm
// per-identity cache vs a cold verifier that pays both pairings.
func BenchmarkAblationVerifyCached(b *testing.B) {
	kgc, err := Setup(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	sk, err := GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey("n"), rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("m")
	sig, err := Sign(kgc.Params(), sk, msg, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("warm", func(b *testing.B) {
		vf := NewVerifier(kgc.Params())
		if err := vf.Verify(sk.Public(), msg, sig); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := vf.Verify(sk.Public(), msg, sig); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := NewVerifier(kgc.Params()).Verify(sk.Public(), msg, sig); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBatchVerify measures same-signer batch verification
// against one-by-one verification for growing batch sizes.
func BenchmarkAblationBatchVerify(b *testing.B) {
	kgc, err := Setup(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	sk, err := GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey("n"), rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 4, 16} {
		msgs := make([][]byte, n)
		sigs := make([]*Signature, n)
		for i := range msgs {
			msgs[i] = []byte{byte(i)}
			if sigs[i], err = Sign(kgc.Params(), sk, msgs[i], rng); err != nil {
				b.Fatal(err)
			}
		}
		vf := NewVerifier(kgc.Params())
		if err := vf.BatchVerify(sk.Public(), msgs, sigs); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("batch/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := vf.BatchVerify(sk.Public(), msgs, sigs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJitter sweeps the honest rebroadcast jitter under a
// rushing attack: the jitter window is exactly what the attacker exploits,
// so the attacker-drop ratio (attached as a metric) grows with it.
func BenchmarkAblationJitter(b *testing.B) {
	for _, jitter := range []time.Duration{1 * time.Millisecond, 25 * time.Millisecond, 100 * time.Millisecond} {
		jitter := jitter
		b.Run(jitter.String(), func(b *testing.B) {
			var drop float64
			for i := 0; i < b.N; i++ {
				sc := manet.Scenario{
					Duration: 30 * time.Second,
					MaxSpeed: 5,
					Seed:     3,
					Attack:   manet.Rushing,
				}
				sc.AODV.RebroadcastJitterMax = jitter
				res, err := sc.Run()
				if err != nil {
					b.Fatal(err)
				}
				drop = res.PacketDropRatio()
			}
			b.ReportMetric(drop, "dropRatio")
		})
	}
}

// BenchmarkAblationRingSearch compares expanding-ring route discovery with
// straight flooding; the RREQ ratio is attached as a metric.
func BenchmarkAblationRingSearch(b *testing.B) {
	run := func(b *testing.B, flood bool) {
		var ratio float64
		for i := 0; i < b.N; i++ {
			sc := manet.Scenario{Duration: 30 * time.Second, MaxSpeed: 15, Seed: 4}
			if flood {
				sc.AODV.TTLStart = 12 // first ring already spans the network
			}
			res, err := sc.Run()
			if err != nil {
				b.Fatal(err)
			}
			ratio = res.RREQRatio()
		}
		b.ReportMetric(ratio, "rreqRatio")
	}
	b.Run("ring", func(b *testing.B) { run(b, false) })
	b.Run("flood", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationRealCrypto compares a McCLS-AODV run with real pairings
// per control packet against the calibrated cost model (identical routing
// decisions, very different wall clock).
func BenchmarkAblationRealCrypto(b *testing.B) {
	base := experiments.Scenario{
		Nodes:    8,
		Width:    800,
		Height:   300,
		Duration: 10 * time.Second,
		MaxSpeed: 5,
		Flows:    3,
		Seed:     5,
	}
	b.Run("costmodel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := base
			sc.Security = experiments.McCLSCost
			if _, err := sc.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("real", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := base
			sc.Security = experiments.McCLSReal
			if _, err := sc.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationInsiderGrayhole contrasts the outsider attacks (which
// McCLS stops outright) with an insider gray hole that signs valid control
// packets: the drop-ratio metric stays nonzero, delimiting what routing
// authentication buys.
func BenchmarkAblationInsiderGrayhole(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		res, err := manet.Scenario{
			Duration: 30 * time.Second,
			MaxSpeed: 5,
			Seed:     6,
			Security: manet.McCLS,
			Attack:   manet.Grayhole,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		drop = res.PacketDropRatio()
	}
	b.ReportMetric(drop, "dropRatio")
}

// BenchmarkAblationMultiSignerBatch measures cross-signer batch
// verification (shared final exponentiation + randomized weights) against
// verifying the same set one by one.
func BenchmarkAblationMultiSignerBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	kgc, err := Setup(rng)
	if err != nil {
		b.Fatal(err)
	}
	const n = 8
	pks := make([]*PublicKey, n)
	msgs := make([][]byte, n)
	sigs := make([]*Signature, n)
	for i := 0; i < n; i++ {
		sk, err := GenerateKeyPair(kgc.Params(), kgc.ExtractPartialPrivateKey(fmt.Sprintf("s%d", i)), rng)
		if err != nil {
			b.Fatal(err)
		}
		pks[i] = sk.Public()
		msgs[i] = []byte{byte(i)}
		if sigs[i], err = Sign(kgc.Params(), sk, msgs[i], rng); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("one-by-one", func(b *testing.B) {
		vf := NewVerifier(kgc.Params())
		for i := range sigs { // warm the cache
			if err := vf.Verify(pks[i], msgs[i], sigs[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range sigs {
				if err := vf.Verify(pks[j], msgs[j], sigs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		vf := NewVerifier(kgc.Params())
		for i := 0; i < b.N; i++ {
			if err := vf.VerifyBatchMulti(pks, msgs, sigs, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCollisions toggles the receiver-overlap collision model
// (off in the headline figures, matching the disk-model abstraction level):
// the PDR metric shows how much broadcast storms cost when frames can
// corrupt each other.
func BenchmarkAblationCollisions(b *testing.B) {
	run := func(b *testing.B, collisions bool) {
		var pdr float64
		for i := 0; i < b.N; i++ {
			sc := manet.Scenario{Duration: 30 * time.Second, MaxSpeed: 10, Seed: 8}
			sc.Radio.Collisions = collisions
			res, err := sc.Run()
			if err != nil {
				b.Fatal(err)
			}
			pdr = res.PacketDeliveryRatio()
		}
		b.ReportMetric(pdr, "PDR")
	}
	b.Run("disk-model", func(b *testing.B) { run(b, false) })
	b.Run("collisions", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationHello toggles HELLO beaconing: proactive link-failure
// detection trades control overhead (RREQ ratio unaffected, beacon bytes
// added) for fewer data packets lost on stale routes.
func BenchmarkAblationHello(b *testing.B) {
	run := func(b *testing.B, hello time.Duration) {
		var pdr float64
		for i := 0; i < b.N; i++ {
			sc := manet.Scenario{Duration: 30 * time.Second, MaxSpeed: 20, Seed: 9}
			sc.AODV.HelloInterval = hello
			res, err := sc.Run()
			if err != nil {
				b.Fatal(err)
			}
			pdr = res.PacketDeliveryRatio()
		}
		b.ReportMetric(pdr, "PDR")
	}
	b.Run("off", func(b *testing.B) { run(b, 0) })
	b.Run("1s", func(b *testing.B) { run(b, time.Second) })
}

// BenchmarkFigureDSR regenerates the DSR generality extension figure
// (packet drop ratio under attack, DSR substrate).
func BenchmarkFigureDSR(b *testing.B) { benchFigure(b, manet.FigureDSR) }

// BenchmarkAblationSpatialIndex runs the same 500-node city scenario with
// the naive O(n) neighbor scan and with the uniform-grid spatial index.
// Results are bit-identical (the grid is pinned against the naive scan by
// differential tests); only the wall clock moves. The events/sec gap here
// is the simulator-level view of the BenchmarkNeighbors/BenchmarkBroadcastWave
// kernel numbers.
func BenchmarkAblationSpatialIndex(b *testing.B) {
	run := func(b *testing.B, noIndex bool) {
		var evPerSec float64
		for i := 0; i < b.N; i++ {
			sc := manet.Scenario{
				Nodes: 500, Width: 2000, Height: 2000,
				Mobility: manet.Manhattan, MaxSpeed: 10, RangeJitter: 0.3,
				Duration: 20 * time.Second, Seed: 1,
			}
			sc.Radio.NoIndex = noIndex
			start := time.Now()
			res, err := sc.Run()
			if err != nil {
				b.Fatal(err)
			}
			evPerSec = float64(res.Events) / time.Since(start).Seconds()
		}
		b.ReportMetric(evPerSec, "events/sec")
	}
	b.Run("naive", func(b *testing.B) { run(b, true) })
	b.Run("grid", func(b *testing.B) { run(b, false) })
}
