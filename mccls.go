// Package mccls is the public API of the McCLS certificateless signature
// scheme (Xu, Liu, Zhang, He, Dai, Shu — "A Certificateless Signature
// Scheme for Mobile Wireless Cyber-Physical Systems", ICDCS 2008
// Workshops), implemented from scratch over a BN254 pairing built on the
// Go standard library.
//
// A certificateless signature system has three roles:
//
//   - The Key Generation Center runs Setup once, publishes Params and
//     issues each identity a partial private key D_ID = s·H1(ID).
//   - A user combines its partial key with a self-chosen secret value x
//     into a PrivateKey (GenerateKeyPair); its PublicKey P_ID = x·P_pub
//     needs no certificate.
//   - Anyone holding Params verifies signatures against (identity,
//     public key) directly; the per-identity pairing constant
//     e(P_pub, Q_ID) is cached inside Verifier, so steady-state
//     verification costs one pairing, and signing costs no pairings at
//     all.
//
// Basic usage:
//
//	kgc, _ := mccls.Setup(nil)
//	ppk := kgc.ExtractPartialPrivateKey("alice@example")
//	sk, _ := mccls.GenerateKeyPair(kgc.Params(), ppk, nil)
//	sig, _ := mccls.Sign(kgc.Params(), sk, []byte("msg"), nil)
//	vf := mccls.NewVerifier(kgc.Params())
//	err := vf.Verify(sk.Public(), []byte("msg"), sig)
//
// The sibling package mccls/manet exposes the paper's MANET evaluation
// (AODV with McCLS routing authentication under black hole and rushing
// attacks).
package mccls

import (
	"io"
	"math/big"

	"mccls/internal/core"
)

// Core types, aliased from the implementation so the full method sets are
// part of the public API.
type (
	// KGC is the Key Generation Center holding the master secret.
	KGC = core.KGC
	// Params are the public system parameters (P, P_pub, H1, H2).
	Params = core.Params
	// PartialPrivateKey is the KGC's contribution D_ID to a user key.
	PartialPrivateKey = core.PartialPrivateKey
	// PrivateKey is a user's full signing key (secret value + partial key).
	PrivateKey = core.PrivateKey
	// PublicKey is the certificate-free public key P_ID bound to an identity.
	PublicKey = core.PublicKey
	// Signature is a McCLS signature (V, S, R).
	Signature = core.Signature
	// Verifier checks signatures, caching per-identity pairing constants.
	Verifier = core.Verifier
)

// Sentinel errors; match with errors.Is.
var (
	ErrVerifyFailed      = core.ErrVerifyFailed
	ErrInvalidSignature  = core.ErrInvalidSignature
	ErrInvalidKey        = core.ErrInvalidKey
	ErrPartialKeyInvalid = core.ErrPartialKeyInvalid
	ErrBatchMismatch     = core.ErrBatchMismatch
)

// SignatureSize is the byte length of a marshalled signature;
// CompactSignatureSize is the compressed-point encoding produced by
// Signature.MarshalCompact.
const (
	SignatureSize        = core.SignatureSize
	CompactSignatureSize = core.CompactSignatureSize
)

// Setup creates a KGC with a fresh master key. A nil reader uses
// crypto/rand.
func Setup(rng io.Reader) (*KGC, error) { return core.Setup(rng) }

// NewKGCFromMaster rebuilds a KGC from a stored master key.
func NewKGCFromMaster(s *big.Int) (*KGC, error) { return core.NewKGCFromMaster(s) }

// GenerateKeyPair completes a certificateless keypair from a partial
// private key, drawing the secret value from rng (nil uses crypto/rand).
func GenerateKeyPair(params *Params, ppk *PartialPrivateKey, rng io.Reader) (*PrivateKey, error) {
	return core.GenerateKeyPair(params, ppk, rng)
}

// NewPrivateKeyFromSecret rebuilds a private key from a stored secret value.
func NewPrivateKeyFromSecret(params *Params, ppk *PartialPrivateKey, x *big.Int) (*PrivateKey, error) {
	return core.NewPrivateKeyFromSecret(params, ppk, x)
}

// Sign produces a signature over msg. Signing performs no pairing
// operations. A nil reader uses crypto/rand.
func Sign(params *Params, sk *PrivateKey, msg []byte, rng io.Reader) (*Signature, error) {
	return core.Sign(params, sk, msg, rng)
}

// NewVerifier creates a verifier for the given system parameters.
func NewVerifier(params *Params) *Verifier { return core.NewVerifier(params) }

// Decoding helpers for material received over the wire; all validate group
// membership.
var (
	UnmarshalParams            = core.UnmarshalParams
	UnmarshalPublicKey         = core.UnmarshalPublicKey
	UnmarshalSignature         = core.UnmarshalSignature
	UnmarshalSignatureCompact  = core.UnmarshalSignatureCompact
	UnmarshalPartialPrivateKey = core.UnmarshalPartialPrivateKey
)
